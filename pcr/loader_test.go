package pcr_test

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"repro/internal/autotune"
	"repro/pcr"
)

// epochIDs runs one loader epoch and returns the sample IDs in delivery
// order plus the epoch's stats.
func epochIDs(t *testing.T, l *pcr.Loader, epoch int) ([]int64, pcr.EpochStats) {
	t.Helper()
	var ids []int64
	for b, err := range l.Epoch(context.Background(), epoch) {
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if b.Epoch != epoch {
			t.Fatalf("batch reports epoch %d, want %d", b.Epoch, epoch)
		}
		for _, s := range b.Samples {
			if s.Image == nil {
				t.Fatalf("epoch %d: sample %d not decoded", epoch, s.ID)
			}
			ids = append(ids, s.ID)
		}
	}
	stats, ok := l.LastEpochStats()
	if !ok {
		t.Fatalf("epoch %d: no stats after completed epoch", epoch)
	}
	return ids, stats
}

// TestLoaderDeterministicShuffle: same seed ⇒ same per-epoch order across
// loader instances; different epochs ⇒ different orders; a different seed
// ⇒ a different order.
func TestLoaderDeterministicShuffle(t *testing.T) {
	dir, n := synthDir(t, pcr.WithImagesPerRecord(1)) // 1 image/record: order is record order
	if n < 8 {
		t.Fatalf("dataset too small to test shuffling: %d images", n)
	}
	open := func(seed int64) *pcr.Loader {
		ds, err := pcr.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ds.Close() })
		l, err := pcr.NewLoader(ds, pcr.WithBatchSize(4), pcr.WithLoaderSeed(seed), pcr.WithShuffleWindow(8))
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	a, b := open(7), open(7)
	e0a, _ := epochIDs(t, a, 0)
	e0b, _ := epochIDs(t, b, 0)
	if !equalIDs(e0a, e0b) {
		t.Fatal("same seed, same epoch: orders differ")
	}
	e1a, _ := epochIDs(t, a, 1)
	if equalIDs(e0a, e1a) {
		t.Fatal("epoch 0 and epoch 1 have identical orders")
	}
	e1b, _ := epochIDs(t, b, 1)
	if !equalIDs(e1a, e1b) {
		t.Fatal("same seed, same epoch (1): orders differ")
	}
	c := open(8)
	e0c, _ := epochIDs(t, c, 0)
	if equalIDs(e0a, e0c) {
		t.Fatal("different seeds produced identical epoch-0 orders")
	}
	// Each epoch is a permutation of the full sample set.
	for _, ids := range [][]int64{e0a, e1a, e0c} {
		if len(ids) != n {
			t.Fatalf("epoch delivered %d samples, want %d", len(ids), n)
		}
		seen := make(map[int64]bool, len(ids))
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("sample %d delivered twice in one epoch", id)
			}
			seen[id] = true
		}
	}
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLoaderShardPartition: shards are disjoint, cover every sample, and
// are balanced to within one record.
func TestLoaderShardPartition(t *testing.T) {
	dir, n := synthDir(t, pcr.WithImagesPerRecord(2))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	const shards = 3
	seen := make(map[int64]int)
	var minRec, maxRec int
	for s := 0; s < shards; s++ {
		l, err := pcr.NewLoader(ds, pcr.WithShard(s, shards), pcr.WithBatchSize(5))
		if err != nil {
			t.Fatal(err)
		}
		if s == 0 || l.NumRecords() < minRec {
			minRec = l.NumRecords()
		}
		if l.NumRecords() > maxRec {
			maxRec = l.NumRecords()
		}
		ids, _ := epochIDs(t, l, 0)
		for _, id := range ids {
			if prev, dup := seen[id]; dup {
				t.Fatalf("sample %d appears in shards %d and %d", id, prev, s)
			}
			seen[id] = s
		}
	}
	if len(seen) != n {
		t.Fatalf("shards cover %d samples, want %d", len(seen), n)
	}
	if maxRec-minRec > 1 {
		t.Fatalf("shard imbalance: record counts range %d..%d", minRec, maxRec)
	}
}

// TestLoaderBatchAssembly checks batch sizes with and without the final
// short batch.
func TestLoaderBatchAssembly(t *testing.T) {
	dir, n := synthDir(t, pcr.WithImagesPerRecord(4))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	batch := 7
	l, err := pcr.NewLoader(ds, pcr.WithBatchSize(batch))
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	for b, err := range l.Epoch(context.Background(), 0) {
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(b.Samples))
	}
	total := 0
	for i, sz := range sizes {
		total += sz
		if i < len(sizes)-1 && sz != batch {
			t.Fatalf("batch %d has %d samples, want %d", i, sz, batch)
		}
	}
	if total != n {
		t.Fatalf("batches deliver %d samples, want %d", total, n)
	}
	stats, _ := l.LastEpochStats()
	if stats.Batches != len(sizes) || stats.Images != n {
		t.Fatalf("stats report %d batches / %d images, want %d / %d", stats.Batches, stats.Images, len(sizes), n)
	}

	ld, err := pcr.NewLoader(ds, pcr.WithBatchSize(batch), pcr.WithDropRemainder())
	if err != nil {
		t.Fatal(err)
	}
	for b, err := range ld.Epoch(context.Background(), 0) {
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Samples) != batch {
			t.Fatalf("drop-remainder batch has %d samples, want %d", len(b.Samples), batch)
		}
	}
}

// midEpochPolicy switches from Full to quality 1 after k RecordQuality
// calls — a stand-in for a controller cheapening an epoch in flight.
type midEpochPolicy struct {
	mu    sync.Mutex
	after int
	calls int
}

func (p *midEpochPolicy) RecordQuality(epoch, record int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	if p.calls > p.after {
		return 1
	}
	return pcr.Full
}

// TestLoaderAdaptiveQualityMovesFewerBytes: an epoch whose policy cheapens
// mid-flight reads strictly fewer bytes than a full-quality epoch of the
// same data, and the stats expose the mixed qualities.
func TestLoaderAdaptiveQualityMovesFewerBytes(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(2), pcr.WithScanGroups(4))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	full, err := pcr.NewLoader(ds, pcr.WithQuality(pcr.Full))
	if err != nil {
		t.Fatal(err)
	}
	_, fullStats := epochIDs(t, full, 0)
	if fullStats.MinQuality != fullStats.MaxQuality || fullStats.MinQuality != ds.Qualities() {
		t.Fatalf("full epoch qualities [%d,%d], want both %d", fullStats.MinQuality, fullStats.MaxQuality, ds.Qualities())
	}

	adaptive, err := pcr.NewLoader(ds, pcr.WithQualityPolicy(&midEpochPolicy{after: 2}))
	if err != nil {
		t.Fatal(err)
	}
	ids, adStats := epochIDs(t, adaptive, 0)
	if adStats.Images != fullStats.Images || len(ids) != fullStats.Images {
		t.Fatalf("adaptive epoch delivered %d images, want %d", adStats.Images, fullStats.Images)
	}
	if adStats.BytesRead >= fullStats.BytesRead {
		t.Fatalf("adaptive epoch read %d bytes, want < full epoch's %d", adStats.BytesRead, fullStats.BytesRead)
	}
	if adStats.MinQuality != 1 || adStats.MaxQuality != ds.Qualities() {
		t.Fatalf("adaptive epoch qualities [%d,%d], want [1,%d]", adStats.MinQuality, adStats.MaxQuality, ds.Qualities())
	}
}

// TestLoaderRemoteMatchesLocal runs the same loader configuration over
// Open and OpenRemote and requires identical delivery order and byte
// accounting.
func TestLoaderRemoteMatchesLocal(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(4), pcr.WithScanGroups(3))
	_, ts := startServer(t, dir, nil)

	local, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	remote, err := pcr.OpenRemote(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	opts := []pcr.LoaderOption{pcr.WithBatchSize(3), pcr.WithLoaderSeed(11), pcr.WithQuality(2)}
	ll, err := pcr.NewLoader(local, opts...)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := pcr.NewLoader(remote, opts...)
	if err != nil {
		t.Fatal(err)
	}
	lids, lstats := epochIDs(t, ll, 0)
	rids, rstats := epochIDs(t, rl, 0)
	if !equalIDs(lids, rids) {
		t.Fatal("remote loader delivery order differs from local")
	}
	if lstats.BytesRead != rstats.BytesRead {
		t.Fatalf("remote loader read %d bytes, local %d", rstats.BytesRead, lstats.BytesRead)
	}
}

// TestLoaderUnsupportedFormat: baseline formats have no record random
// access for the loader to shuffle over.
func TestLoaderUnsupportedFormat(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithFormat(pcr.TFRecord))
	ds, err := pcr.Open(dir, pcr.WithFormat(pcr.TFRecord))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, err := pcr.NewLoader(ds); !errors.Is(err, errors.ErrUnsupported) {
		t.Fatalf("NewLoader on tfrecord: %v, want ErrUnsupported", err)
	}
}

// TestPlateauPolicySteps: reported plateaus step the quality down one
// level at a time, never below Min, and only once the dataset's top is
// known.
func TestPlateauPolicySteps(t *testing.T) {
	p := &pcr.PlateauPolicy{
		Detector: autotune.PlateauDetector{Window: 1, MinImprove: 0.99},
		Min:      1,
	}
	// Before any loader has resolved Full, plateaus must not step.
	p.Report(1.0)
	p.Report(1.0)
	p.Report(1.0)
	if q := p.Quality(); q != pcr.Full {
		t.Fatalf("policy stepped to %d before Full was resolved", q)
	}

	dir, _ := synthDir(t, pcr.WithImagesPerRecord(2), pcr.WithScanGroups(4))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	l, err := pcr.NewLoader(ds, pcr.WithQualityPolicy(p))
	if err != nil {
		t.Fatal(err)
	}
	epochIDs(t, l, 0) // resolves Full against the dataset

	// With Window=1 and a flat loss, every further report is a plateau:
	// one step down per report, stopping at Min.
	top := ds.Qualities()
	for want := top - 1; want >= 1; want-- {
		p.Report(1.0)
		if q := p.Quality(); q != want {
			t.Fatalf("after plateau, quality = %d, want %d", q, want)
		}
	}
	p.Report(1.0)
	if q := p.Quality(); q != 1 {
		t.Fatalf("policy descended below Min: %d", q)
	}
}

// TestLoaderResumeMidEpoch: a worker consumes part of an epoch, checkpoints,
// "crashes", and a fresh loader resumed from the checkpoint delivers exactly
// the remaining samples of the same shuffled epoch — and never reads the
// records wholly inside the consumed prefix.
func TestLoaderResumeMidEpoch(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(4))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	opts := []pcr.LoaderOption{
		pcr.WithBatchSize(8),
		pcr.WithLoaderSeed(7),
		pcr.WithShuffleWindow(4),
	}
	full, err := pcr.NewLoader(ds, opts...)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs, _ := epochIDs(t, full, 3)

	// First life: consume 2 batches of epoch 3, checkpoint, stop.
	first, err := pcr.NewLoader(ds, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var gotIDs []int64
	var cp pcr.Checkpoint
	consumed := 0
	for b, err := range first.Epoch(context.Background(), 3) {
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range b.Samples {
			gotIDs = append(gotIDs, s.ID)
		}
		consumed++
		if consumed == 2 {
			var ok bool
			cp, ok = first.Checkpoint()
			if !ok {
				t.Fatal("no checkpoint after two batches")
			}
			break
		}
	}
	if cp.Epoch != 3 || cp.Batch != 2 {
		t.Fatalf("checkpoint = (%d,%d), want (3,2)", cp.Epoch, cp.Batch)
	}

	// Second life: a fresh loader resumed from the checkpoint. The resumed
	// epoch must move fewer record bytes than a full one (skipped records
	// are never read).
	second, err := pcr.NewLoader(ds, pcr.WithResume(cp))
	if err != nil {
		t.Fatal(err)
	}
	for b, err := range second.Epoch(context.Background(), cp.Epoch) {
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range b.Samples {
			gotIDs = append(gotIDs, s.ID)
		}
	}
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("resumed epoch delivered %d samples total, want %d", len(gotIDs), len(wantIDs))
	}
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("sample %d: resumed sequence %d, uninterrupted %d", i, gotIDs[i], wantIDs[i])
		}
	}
	fullStats, _ := full.LastEpochStats()
	resStats, ok := second.LastEpochStats()
	if !ok {
		t.Fatal("no stats after resumed epoch")
	}
	if resStats.BytesRead >= fullStats.BytesRead {
		t.Fatalf("resumed epoch read %d bytes, full epoch %d — skipped records were read",
			resStats.BytesRead, fullStats.BytesRead)
	}

	// Later epochs stream in full again.
	nextIDs, _ := epochIDs(t, second, 4)
	wantNext, _ := epochIDs(t, full, 4)
	if len(nextIDs) != len(wantNext) {
		t.Fatalf("epoch after resume delivered %d samples, want %d", len(nextIDs), len(wantNext))
	}
}

// TestLoaderResumeRoundTripsJSON: checkpoints persist like model weights.
func TestLoaderResumeRoundTripsJSON(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(4))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	l, err := pcr.NewLoader(ds, pcr.WithBatchSize(4), pcr.WithLoaderSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range l.Epoch(context.Background(), 0) {
		if err != nil {
			t.Fatal(err)
		}
		break // one batch
	}
	cp, ok := l.Checkpoint()
	if !ok {
		t.Fatal("no checkpoint")
	}
	data, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var back pcr.Checkpoint
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != cp {
		t.Fatalf("checkpoint round-trip: %+v != %+v", back, cp)
	}
	if back.Seed != 9 || back.BatchSize != 4 {
		t.Fatalf("checkpoint did not record configuration: %+v", back)
	}
}

// TestLoaderResumeAtEpochEnd: resuming from a checkpoint taken after the
// final batch yields an empty remainder, not an error.
func TestLoaderResumeAtEpochEnd(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(4))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	l, err := pcr.NewLoader(ds, pcr.WithBatchSize(8))
	if err != nil {
		t.Fatal(err)
	}
	epochIDs(t, l, 0)
	cp, _ := l.Checkpoint()

	resumed, err := pcr.NewLoader(ds, pcr.WithResume(cp))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, err := range resumed.Epoch(context.Background(), cp.Epoch) {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 0 {
		t.Fatalf("resume past the last batch delivered %d batches, want 0", n)
	}
}
