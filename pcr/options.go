package pcr

import (
	"fmt"
	"time"
)

// config is the resolved option set shared by Create and Open.
type config struct {
	format          Format
	imagesPerRecord int
	scanGroups      int
	cacheBytes      int64
	workers         int
	jpegQuality     int
	diskCacheDir    string
	diskCacheBytes  int64
	diskCacheLazy   bool
	indexShard      int
	indexShards     int // 0 = whole index
	hedgeDelay      time.Duration
	hedgeSet        bool
}

func defaultConfig() *config {
	return &config{
		format:          PCR,
		imagesPerRecord: 64,
		jpegQuality:     90,
	}
}

// Option configures Create, Open, and the helpers built on them.
type Option func(*config) error

func applyOptions(opts []Option) (*config, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(cfg); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

// WithFormat selects the storage layout: PCR (default), TFRecord, or
// FilePerImage.
func WithFormat(f Format) Option {
	return func(c *config) error {
		if f == nil {
			return fmt.Errorf("pcr: nil format")
		}
		c.format = f
		return nil
	}
}

// WithImagesPerRecord sets the record batching factor for record-based
// formats (the paper uses ~1024 at ImageNet scale; the default 64 suits
// small datasets). FilePerImage ignores it.
func WithImagesPerRecord(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("pcr: images per record must be positive, got %d", n)
		}
		c.imagesPerRecord = n
		return nil
	}
}

// WithScanGroups coalesces the progressive scans of each image into n scan
// groups, so the dataset exposes exactly n quality levels (PCR format only;
// default one group per scan, 10 for color JPEG). Fewer groups mean fewer
// index entries and coarser quality steps — the paper's §3.1 knob.
func WithScanGroups(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("pcr: scan groups must be non-negative, got %d", n)
		}
		c.scanGroups = n
		return nil
	}
}

// WithCacheBytes gives the dataset an LRU prefix cache of the given byte
// budget. Because every PCR quality level is a prefix of the same byte
// stream, a record cached at a low quality is upgraded in place by fetching
// only the missing delta (§5 of the paper). Zero (the default) disables
// caching.
func WithCacheBytes(n int64) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("pcr: cache bytes must be non-negative, got %d", n)
		}
		c.cacheBytes = n
		return nil
	}
}

// WithDiskCache gives the dataset a persistent on-disk prefix cache
// (internal/diskcache) of the given byte budget at dir: a second tier under
// the in-memory WithCacheBytes LRU that survives process restarts. Record
// prefixes are stored as append-only files keyed by a fingerprint of the
// dataset's index, so a restarted worker's next epoch reads warm local
// bytes instead of re-fetching — near-zero network for a remote dataset —
// and a later quality upgrade appends only the delta bytes (§5 delta
// pricing, made durable). Crash recovery discards torn entries on open;
// the directory must belong to exactly one process at a time (give each
// training worker its own). PCR format only.
func WithDiskCache(dir string, maxBytes int64) Option {
	return func(c *config) error {
		if dir == "" {
			return fmt.Errorf("pcr: empty disk cache directory")
		}
		if maxBytes <= 0 {
			return fmt.Errorf("pcr: disk cache bytes must be positive, got %d", maxBytes)
		}
		c.diskCacheDir = dir
		c.diskCacheBytes = maxBytes
		return nil
	}
}

// WithDiskCacheLazyVerify defers the disk cache's recovery CRC
// verification from Open to each entry's first read. Eager recovery reads
// and checksums every cached byte before Open returns — fine at gigabytes,
// a first-epoch stall at terabytes; lazy mode opens on metadata alone
// (missing or short files are still discarded immediately) and checks each
// entry's journaled CRC the first time a read touches it, quarantining and
// refetching a torn entry at that point. Corrupt bytes are never served in
// either mode. Requires WithDiskCache.
func WithDiskCacheLazyVerify() Option {
	return func(c *config) error {
		c.diskCacheLazy = true
		return nil
	}
}

// WithIndexShard opens only stride shard index-of-count of the dataset's
// record index: records r with r % count == index, the same disjoint
// partition pcr.Loader's WithShard uses. A remote worker opened this way
// downloads only its share of the index (GET /index?shard=i&nshards=n) and
// sees a dataset whose records ARE its shard — drive it with a default
// (unsharded) Loader. OpenRemote only.
func WithIndexShard(index, count int) Option {
	return func(c *config) error {
		if count <= 0 {
			return fmt.Errorf("pcr: index shard count must be positive, got %d", count)
		}
		if index < 0 || index >= count {
			return fmt.Errorf("pcr: index shard %d out of range [0,%d)", index, count)
		}
		c.indexShard, c.indexShards = index, count
		return nil
	}
}

// WithHedgeDelay tunes the remote client's tail-latency hedging: a record
// read whose first attempt has been in flight longer than
// max(floor, p99-derived delay) is re-sent to the record's next replica,
// and the first response wins. floor raises (or, at zero, keeps) the
// default 25ms minimum delay; a negative floor disables hedging entirely —
// reads then rely on error-driven failover alone, which keeps server byte
// counters exact (no redundant requests ever land). Only meaningful
// against a replicated fleet; OpenRemote only.
func WithHedgeDelay(floor time.Duration) Option {
	return func(c *config) error {
		c.hedgeDelay = floor
		c.hedgeSet = true
		return nil
	}
}

// WithPrefetchWorkers bounds the goroutines Scan uses to decode images
// concurrently (the paper's loader uses 4–8 prefetch threads). The default 4
// applies when n is not set; Scan never uses fewer than 1.
func WithPrefetchWorkers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("pcr: prefetch workers must be non-negative, got %d", n)
		}
		c.workers = n
		return nil
	}
}

// WithJPEGQuality sets the quantization quality used when Append must encode
// a Sample.Image into JPEG (default 90). Samples appended with explicit JPEG
// bytes are stored as-is.
func WithJPEGQuality(q int) Option {
	return func(c *config) error {
		if q < 1 || q > 100 {
			return fmt.Errorf("pcr: jpeg quality %d out of range [1,100]", q)
		}
		c.jpegQuality = q
		return nil
	}
}

func (c *config) prefetchWorkers() int {
	if c.workers <= 0 {
		return 4
	}
	return c.workers
}
