package pcr

import "fmt"

// config is the resolved option set shared by Create and Open.
type config struct {
	format          Format
	imagesPerRecord int
	scanGroups      int
	cacheBytes      int64
	workers         int
	jpegQuality     int
}

func defaultConfig() *config {
	return &config{
		format:          PCR,
		imagesPerRecord: 64,
		jpegQuality:     90,
	}
}

// Option configures Create, Open, and the helpers built on them.
type Option func(*config) error

func applyOptions(opts []Option) (*config, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(cfg); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

// WithFormat selects the storage layout: PCR (default), TFRecord, or
// FilePerImage.
func WithFormat(f Format) Option {
	return func(c *config) error {
		if f == nil {
			return fmt.Errorf("pcr: nil format")
		}
		c.format = f
		return nil
	}
}

// WithImagesPerRecord sets the record batching factor for record-based
// formats (the paper uses ~1024 at ImageNet scale; the default 64 suits
// small datasets). FilePerImage ignores it.
func WithImagesPerRecord(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("pcr: images per record must be positive, got %d", n)
		}
		c.imagesPerRecord = n
		return nil
	}
}

// WithScanGroups coalesces the progressive scans of each image into n scan
// groups, so the dataset exposes exactly n quality levels (PCR format only;
// default one group per scan, 10 for color JPEG). Fewer groups mean fewer
// index entries and coarser quality steps — the paper's §3.1 knob.
func WithScanGroups(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("pcr: scan groups must be non-negative, got %d", n)
		}
		c.scanGroups = n
		return nil
	}
}

// WithCacheBytes gives the dataset an LRU prefix cache of the given byte
// budget. Because every PCR quality level is a prefix of the same byte
// stream, a record cached at a low quality is upgraded in place by fetching
// only the missing delta (§5 of the paper). Zero (the default) disables
// caching.
func WithCacheBytes(n int64) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("pcr: cache bytes must be non-negative, got %d", n)
		}
		c.cacheBytes = n
		return nil
	}
}

// WithPrefetchWorkers bounds the goroutines Scan uses to decode images
// concurrently (the paper's loader uses 4–8 prefetch threads). The default 4
// applies when n is not set; Scan never uses fewer than 1.
func WithPrefetchWorkers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("pcr: prefetch workers must be non-negative, got %d", n)
		}
		c.workers = n
		return nil
	}
}

// WithJPEGQuality sets the quantization quality used when Append must encode
// a Sample.Image into JPEG (default 90). Samples appended with explicit JPEG
// bytes are stored as-is.
func WithJPEGQuality(q int) Option {
	return func(c *config) error {
		if q < 1 || q > 100 {
			return fmt.Errorf("pcr: jpeg quality %d out of range [1,100]", q)
		}
		c.jpegQuality = q
		return nil
	}
}

func (c *config) prefetchWorkers() int {
	if c.workers <= 0 {
		return 4
	}
	return c.workers
}
