// Package pcr is the public entry point to the Progressive Compressed
// Records reproduction (Kuchnik, Amvrosiadis, Smith — VLDB 2021). It exposes
// the three storage layouts the paper compares behind one Format interface,
// constructs datasets with functional options, and streams samples through a
// cancellable, cache-aware, concurrently-decoding Scan iterator.
//
// Create a dataset and stream it back:
//
//	w, err := pcr.Create(dir, pcr.WithImagesPerRecord(64))
//	...
//	w.Append(pcr.Sample{ID: 1, Label: 3, JPEG: jpg})
//	w.Close()
//
//	ds, err := pcr.Open(dir)
//	defer ds.Close()
//	for s, err := range ds.Scan(ctx, 2) { // quality = scan group 2
//		...
//	}
//
// Switching the storage layout is one option — the rest of the program is
// unchanged:
//
//	w, err := pcr.Create(dir, pcr.WithFormat(pcr.TFRecord))
//
// Quality levels: PCR datasets expose one quality level per scan group
// (1 = coarsest prefix, Dataset.Qualities() = full fidelity); the baseline
// formats expose a single level. pcr.Full always selects the highest.
package pcr

import (
	"errors"
	"image"

	"repro/internal/core"
)

// Full selects the highest quality a dataset offers (all scan groups).
const Full = 0

// ErrCorrupt reports structural damage — a truncated record, bad framing
// CRC, bad magic, or unparseable metadata — as opposed to transient I/O
// errors, which are returned unwrapped. Test with errors.Is.
var ErrCorrupt = core.ErrCorrupt

// ErrNoSuchQuality reports a quality level the dataset does not store
// (outside [1, Qualities()], and not Full).
var ErrNoSuchQuality = errors.New("pcr: no such quality level")

// ErrClosed reports use of a closed Writer or Dataset.
var ErrClosed = errors.New("pcr: closed")

// Sample is one labeled image. Append consumes JPEG (or encodes Image when
// JPEG is empty); Scan fills both JPEG (the reassembled stream at the
// requested quality) and Image (its decoded pixels); ScanEncoded fills JPEG
// only.
type Sample struct {
	ID    int64
	Label int64
	JPEG  []byte
	Image image.Image
}
