package pcr_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/pcr"
)

// synthDir writes a small cars dataset and returns its directory.
func synthDir(t *testing.T, opts ...pcr.Option) (string, int) {
	t.Helper()
	dir := t.TempDir()
	n, err := pcr.Synthesize(dir, "cars", 0.1, 1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return dir, n
}

func TestScanRoundTripAllQualities(t *testing.T) {
	dir, n := synthDir(t, pcr.WithImagesPerRecord(8))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	if ds.NumImages() != n {
		t.Fatalf("NumImages = %d, want %d", ds.NumImages(), n)
	}
	var prevSize int64
	for q := 1; q <= ds.Qualities(); q++ {
		size, err := ds.SizeAtQuality(q)
		if err != nil {
			t.Fatal(err)
		}
		if size <= prevSize {
			t.Errorf("SizeAtQuality(%d) = %d, want > %d", q, size, prevSize)
		}
		prevSize = size

		got := 0
		for s, err := range ds.Scan(context.Background(), q) {
			if err != nil {
				t.Fatalf("Scan at quality %d: %v", q, err)
			}
			if s.Image == nil {
				t.Fatalf("Scan at quality %d: sample %d not decoded", q, s.ID)
			}
			if len(s.JPEG) == 0 {
				t.Fatalf("Scan at quality %d: sample %d has no JPEG stream", q, s.ID)
			}
			got++
		}
		if got != n {
			t.Errorf("Scan at quality %d yielded %d samples, want %d", q, got, n)
		}
	}
}

// Scan must preserve storage order even though decoding is concurrent.
func TestScanPreservesOrder(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(4))
	ds, err := pcr.Open(dir, pcr.WithPrefetchWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	var encoded, decoded []int64
	for s, err := range ds.ScanEncoded(context.Background(), pcr.Full) {
		if err != nil {
			t.Fatal(err)
		}
		encoded = append(encoded, s.ID)
	}
	for s, err := range ds.Scan(context.Background(), pcr.Full) {
		if err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, s.ID)
	}
	if len(encoded) != len(decoded) {
		t.Fatalf("encoded %d vs decoded %d samples", len(encoded), len(decoded))
	}
	for i := range encoded {
		if encoded[i] != decoded[i] {
			t.Fatalf("order diverges at %d: encoded %d, decoded %d", i, encoded[i], decoded[i])
		}
	}
}

func TestScanContextCancellation(t *testing.T) {
	dir, n := synthDir(t, pcr.WithImagesPerRecord(4))
	ds, err := pcr.Open(dir, pcr.WithPrefetchWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	var scanErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, err := range ds.Scan(ctx, pcr.Full) {
			if err != nil {
				scanErr = err
				return
			}
			seen++
			if seen == 3 {
				cancel()
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Scan did not stop after cancellation")
	}
	if !errors.Is(scanErr, context.Canceled) {
		t.Fatalf("Scan error = %v, want context.Canceled", scanErr)
	}
	if seen >= n {
		t.Fatalf("Scan consumed the whole dataset (%d samples) despite cancellation", seen)
	}
}

func TestScanNoSuchQuality(t *testing.T) {
	dir, _ := synthDir(t)
	for _, format := range []pcr.Format{pcr.PCR, pcr.TFRecord} {
		d := dir
		if format != pcr.PCR {
			d = t.TempDir()
			if _, err := pcr.Synthesize(d, "cars", 0.05, 1, pcr.WithFormat(format)); err != nil {
				t.Fatal(err)
			}
		}
		ds, err := pcr.Open(d, pcr.WithFormat(format))
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []int{-1, ds.Qualities() + 1} {
			var got error
			for _, err := range ds.Scan(context.Background(), q) {
				got = err
				break
			}
			if !errors.Is(got, pcr.ErrNoSuchQuality) {
				t.Errorf("%s: Scan quality %d error = %v, want ErrNoSuchQuality", format.Name(), q, got)
			}
		}
		ds.Close()
	}
}

// Truncating a record file must surface as ErrCorrupt, not a bare I/O error.
func TestScanTruncatedRecordIsCorrupt(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8))
	recs, err := filepath.Glob(filepath.Join(dir, "record-*.pcr"))
	if err != nil || len(recs) == 0 {
		t.Fatalf("no record files found: %v", err)
	}
	info, err := os.Stat(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(recs[0], info.Size()/2); err != nil {
		t.Fatal(err)
	}

	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	var got error
	for _, err := range ds.Scan(context.Background(), pcr.Full) {
		if err != nil {
			got = err
			break
		}
	}
	if !errors.Is(got, pcr.ErrCorrupt) {
		t.Fatalf("Scan over truncated record = %v, want ErrCorrupt", got)
	}
}

// Garbage inside the metadata section (not just a short file) must also
// surface as ErrCorrupt: wire-level decode failures are structural damage.
func TestScanGarbledMetadataIsCorrupt(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8))
	recs, err := filepath.Glob(filepath.Join(dir, "record-*.pcr"))
	if err != nil || len(recs) == 0 {
		t.Fatalf("no record files found: %v", err)
	}
	f, err := os.OpenFile(recs[0], os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the first metadata bytes (after the 8-byte header) with an
	// invalid wire stream.
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF}, 8); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	var got error
	for _, err := range ds.Scan(context.Background(), 1) {
		if err != nil {
			got = err
			break
		}
	}
	if !errors.Is(got, pcr.ErrCorrupt) {
		t.Fatalf("Scan over garbled metadata = %v, want ErrCorrupt", got)
	}
}

// A flipped byte in a TFRecord frame must also surface as ErrCorrupt.
func TestTFRecordBadCRCIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	if _, err := pcr.Synthesize(dir, "cars", 0.05, 1, pcr.WithFormat(pcr.TFRecord)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "data.tfrecord")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	ds, err := pcr.Open(dir, pcr.WithFormat(pcr.TFRecord))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	var got error
	for _, err := range ds.Scan(context.Background(), pcr.Full) {
		if err != nil {
			got = err
			break
		}
	}
	if !errors.Is(got, pcr.ErrCorrupt) {
		t.Fatalf("Scan over corrupted tfrecord = %v, want ErrCorrupt", got)
	}
}

// Scanning at a low quality then a higher one through the cache must serve
// the second pass by delta upgrades, not full re-reads.
func TestCacheUpgradeAcrossQualities(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8))
	ds, err := pcr.Open(dir, pcr.WithCacheBytes(64<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	ctx := context.Background()
	for _, err := range ds.ScanEncoded(ctx, 1) {
		if err != nil {
			t.Fatal(err)
		}
	}
	stats, ok := ds.CacheStats()
	if !ok {
		t.Fatal("CacheStats not available with WithCacheBytes set")
	}
	if stats.Misses == 0 {
		t.Fatalf("first pass recorded no misses: %+v", stats)
	}
	lowFetched := stats.BytesFetched

	for _, err := range ds.ScanEncoded(ctx, pcr.Full) {
		if err != nil {
			t.Fatal(err)
		}
	}
	stats, _ = ds.CacheStats()
	if stats.UpgradeHits == 0 {
		t.Fatalf("second pass at higher quality recorded no upgrade hits: %+v", stats)
	}
	full, err := ds.SizeAtQuality(pcr.Full)
	if err != nil {
		t.Fatal(err)
	}
	// Total fetched = low prefixes + deltas = exactly one full-dataset read.
	if stats.BytesFetched != full {
		t.Errorf("BytesFetched = %d, want %d (low %d + deltas)", stats.BytesFetched, full, lowFetched)
	}

	// Third pass at full quality: everything cached, no new fetches.
	for _, err := range ds.ScanEncoded(ctx, pcr.Full) {
		if err != nil {
			t.Fatal(err)
		}
	}
	after, _ := ds.CacheStats()
	if after.BytesFetched != stats.BytesFetched {
		t.Errorf("cached pass fetched %d new bytes", after.BytesFetched-stats.BytesFetched)
	}
}

func TestWithScanGroupsCoalesces(t *testing.T) {
	dir := t.TempDir()
	n, err := pcr.Synthesize(dir, "cars", 0.1, 1, pcr.WithImagesPerRecord(8), pcr.WithScanGroups(3))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.Qualities() != 3 {
		t.Fatalf("Qualities = %d, want 3", ds.Qualities())
	}
	for q := 1; q <= 3; q++ {
		got := 0
		for s, err := range ds.Scan(context.Background(), q) {
			if err != nil {
				t.Fatal(err)
			}
			if s.Image == nil {
				t.Fatal("sample not decoded")
			}
			got++
		}
		if got != n {
			t.Fatalf("quality %d: %d samples, want %d", q, got, n)
		}
	}
}

func TestReadRecordRandomAccess(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	samples, err := ds.ReadRecord(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ds.RecordImages(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != want {
		t.Fatalf("ReadRecord yielded %d samples, want %d", len(samples), want)
	}
	for _, s := range samples {
		if s.Image == nil {
			t.Fatalf("sample %d not decoded", s.ID)
		}
	}

	// Record access on a non-record format is ErrUnsupported.
	tfDir := t.TempDir()
	if _, err := pcr.Synthesize(tfDir, "cars", 0.05, 1, pcr.WithFormat(pcr.TFRecord)); err != nil {
		t.Fatal(err)
	}
	tf, err := pcr.Open(tfDir, pcr.WithFormat(pcr.TFRecord))
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	if _, err := tf.ReadRecord(context.Background(), 0, 1); !errors.Is(err, errors.ErrUnsupported) {
		t.Fatalf("ReadRecord on tfrecord = %v, want ErrUnsupported", err)
	}
}

func TestOpenUnknownFormatName(t *testing.T) {
	if _, err := pcr.FormatByName("parquet"); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("FormatByName = %v, want unknown-format error", err)
	}
}

func TestBuildTrainSet(t *testing.T) {
	set, err := pcr.BuildTrainSet("cars", 0.1, 1, pcr.WithImagesPerRecord(8), pcr.WithScanGroups(4))
	if err != nil {
		t.Fatal(err)
	}
	if set.NumGroups != 4 {
		t.Fatalf("NumGroups = %d, want 4", set.NumGroups)
	}
	if set.NumTrain() == 0 || set.NumRecords() == 0 {
		t.Fatalf("empty train set: %d images, %d records", set.NumTrain(), set.NumRecords())
	}
}
