package pcr_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/autotune"
	"repro/pcr"
)

// TestPlateauPolicyStateIsPerPolicy is the regression test for the shared
// plateau state bug: handing the same detector configuration to two
// policies must not couple them — formerly, two policies sharing one
// *PlateauController silently shared its cooldown (lastTune), so one
// policy's plateau suppressed the other's.
func TestPlateauPolicyStateIsPerPolicy(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(2), pcr.WithScanGroups(4))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	det := autotune.PlateauDetector{Window: 1, MinImprove: 0.99}
	p1 := &pcr.PlateauPolicy{Detector: det}
	p2 := &pcr.PlateauPolicy{Detector: det}
	for _, p := range []*pcr.PlateauPolicy{p1, p2} {
		l, err := pcr.NewLoader(ds, pcr.WithQualityPolicy(p))
		if err != nil {
			t.Fatal(err)
		}
		epochIDs(t, l, 0) // grounds Full against the dataset
	}

	top := ds.Qualities()
	for i := 0; i < 4; i++ {
		p1.Report(1.0)
	}
	if q := p1.Quality(); q != 1 {
		t.Fatalf("p1 at %d after four flat reports, want the floor 1", q)
	}
	if q := p2.Quality(); q != pcr.Full {
		t.Fatalf("p1's reports moved p2 to %d — plateau state is shared across policies", q)
	}
	// p2 detects on its own schedule: its own second flat report is its
	// first eligible plateau, wherever p1's cooldown sits.
	p2.Report(1.0)
	if q := p2.Quality(); q != pcr.Full {
		t.Fatal("p2 stepped with a single report")
	}
	p2.Report(1.0)
	if q := p2.Quality(); q != top-1 {
		t.Fatalf("p2 at %d after its own plateau, want %d — cooldown state leaked from p1", q, top-1)
	}
}

// TestProbePolicyPlanAndDecision drives the bidirectional state machine
// end to end at the policy level: LR-drop gating, the pending plan, the
// cheapest-within-tolerance decision, win counting, and the post-probe
// history reset.
func TestProbePolicyPlanAndDecision(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(2), pcr.WithScanGroups(4))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	p := &pcr.ProbePolicy{
		Detector:   autotune.PlateauDetector{Window: 1, MinImprove: 0.99},
		ProbeSteps: 3,
		Tolerance:  0.1,
	}
	l, err := pcr.NewLoader(ds, pcr.WithQualityPolicy(p))
	if err != nil {
		t.Fatal(err)
	}
	epochIDs(t, l, 0) // grounds Full

	// At full quality there is no headroom: an LR drop requests nothing.
	p.ReportLRDrop()
	if _, _, ok := p.ProbePlan(); ok {
		t.Fatal("probe requested while already at full quality")
	}

	// Descend to 2 (top is 4: the second and third flat reports step).
	p.Report(1.0)
	p.Report(1.0)
	p.Report(1.0)
	if q := p.Quality(); q != 2 {
		t.Fatalf("descended to %d, want 2", q)
	}

	// Now an LR drop plans a probe over [current..full].
	p.ReportLRDrop()
	cands, steps, ok := p.ProbePlan()
	if !ok || steps != 3 {
		t.Fatalf("plan = (%v, %d, %v), want candidates with 3 steps", cands, steps, ok)
	}
	if len(cands) != 3 || cands[0] != 2 || cands[1] != 3 || cands[2] != 4 {
		t.Fatalf("candidates = %v, want [2 3 4]", cands)
	}
	// The plan stays pending until CompleteProbe retires it (a harness that
	// dies mid-probe re-probes on its next pass).
	if _, _, ok := p.ProbePlan(); !ok {
		t.Fatal("plan retired before CompleteProbe")
	}

	// Quality 3's loss is within 10% of the best (quality 4); 2's is not:
	// the probe re-ascends to the cheapest quality inside the tolerance.
	p.CompleteProbe([]pcr.ProbeResult{
		{Quality: 2, Loss: 1.3},
		{Quality: 3, Loss: 1.05},
		{Quality: 4, Loss: 1.0},
	})
	if q := p.Quality(); q != 3 {
		t.Fatalf("probe picked %d, want the cheapest within tolerance, 3", q)
	}
	if run, wins := p.Probes(); run != 1 || wins != 1 {
		t.Fatalf("probes run/won = %d/%d, want 1/1", run, wins)
	}
	if _, _, ok := p.ProbePlan(); ok {
		t.Fatal("plan survived CompleteProbe")
	}
	// The probe reset the plateau history: pre-probe losses cannot trigger
	// an immediate step against the fresh regime.
	p.Report(1.0)
	if q := p.Quality(); q != 3 {
		t.Fatalf("stepped to %d immediately after the probe", q)
	}

	// A losing probe (current quality within tolerance of the best) keeps
	// the current quality and counts no win.
	p.ReportLRDrop()
	if _, _, ok := p.ProbePlan(); !ok {
		t.Fatal("no plan after second LR drop below full")
	}
	p.CompleteProbe([]pcr.ProbeResult{
		{Quality: 3, Loss: 1.0},
		{Quality: 4, Loss: 1.0},
	})
	if q := p.Quality(); q != 3 {
		t.Fatalf("losing probe moved quality to %d", q)
	}
	if run, wins := p.Probes(); run != 2 || wins != 1 {
		t.Fatalf("probes run/won = %d/%d, want 2/1", run, wins)
	}
}

// TestProbePolicyRestartedBelowFullStillProbes is the regression test for
// Full grounding: a worker that restarts with its policy rebuilt at the
// concrete quality it had reached (ProbePolicy{Start: q}) never answers —
// and so never "observes" — any quality above q. The loader must ground
// the dataset's top quality at construction, or the restarted controller
// silently degrades to descend-only and can never re-ascend.
func TestProbePolicyRestartedBelowFullStillProbes(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(2), pcr.WithScanGroups(4))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	p := &pcr.ProbePolicy{Start: 2}
	if _, err := pcr.NewLoader(ds, pcr.WithQualityPolicy(p)); err != nil {
		t.Fatal(err)
	}
	// No epoch has run: only NewLoader has seen the policy.
	p.ReportLRDrop()
	cands, _, ok := p.ProbePlan()
	if !ok {
		t.Fatal("restarted policy below full quality armed no probe after an LR drop")
	}
	if len(cands) != 3 || cands[0] != 2 || cands[2] != 4 {
		t.Fatalf("candidates = %v, want [2 3 4] up to the dataset's full quality", cands)
	}
}

// probeIDs flattens probe batches to sample IDs, checking shape.
func probeIDs(t *testing.T, batches []pcr.Batch, wantBatch int) []int64 {
	t.Helper()
	var ids []int64
	for _, b := range batches {
		if b.Epoch != -1 {
			t.Fatalf("probe batch claims epoch %d, want -1", b.Epoch)
		}
		if len(b.Samples) != wantBatch {
			t.Fatalf("probe batch has %d samples, want %d", len(b.Samples), wantBatch)
		}
		for _, s := range b.Samples {
			if s.Image == nil {
				t.Fatalf("probe sample %d not decoded", s.ID)
			}
			ids = append(ids, s.ID)
		}
	}
	return ids
}

// TestLoaderProbeBatches: the out-of-band probe read path is deterministic,
// validates its arguments, accounts its bytes into the next epoch's stats
// (never into BytesRead), and leaves epoch delivery untouched.
func TestLoaderProbeBatches(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(4), pcr.WithScanGroups(4))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ctx := context.Background()
	mk := func() *pcr.Loader {
		t.Helper()
		l, err := pcr.NewLoader(ds, pcr.WithBatchSize(4), pcr.WithLoaderSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	l := mk()
	_, stats0 := epochIDs(t, l, 0)
	if stats0.Probes != 0 || stats0.ProbeBytes != 0 {
		t.Fatalf("probe accounting nonzero before any probe: %+v", stats0)
	}

	b1, bytes1, err := l.ProbeBatches(ctx, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) != 2 || bytes1 <= 0 {
		t.Fatalf("probe returned %d batches, %d bytes", len(b1), bytes1)
	}
	ids1 := probeIDs(t, b1, 4)

	if _, _, err := l.ProbeBatches(ctx, 99, 1); !errors.Is(err, pcr.ErrNoSuchQuality) {
		t.Fatalf("probe at quality 99: %v, want ErrNoSuchQuality", err)
	}
	if _, _, err := l.ProbeBatches(ctx, 1, 0); err == nil {
		t.Fatal("probe with zero batches accepted")
	}

	b2, bytes2, err := l.ProbeBatches(ctx, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ids2 := probeIDs(t, b2, 4)
	if equalIDs(ids1, ids2) {
		t.Fatal("consecutive probes drew identical records (probe sequence not advancing)")
	}

	// Determinism: a fresh loader with the same seed replays the same
	// probe sequence.
	l2 := mk()
	c1, cb1, err := l2.ProbeBatches(ctx, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(ids1, probeIDs(t, c1, 4)) || cb1 != bytes1 {
		t.Fatal("probe record selection is not deterministic across loaders")
	}

	// Probe accounting folds into the next completed epoch — and only into
	// the probe counters, not BytesRead.
	e1, stats1 := epochIDs(t, l, 1)
	if stats1.Probes != 2 {
		t.Fatalf("epoch folded %d probe passes, want 2", stats1.Probes)
	}
	if stats1.ProbeBytes != bytes1+bytes2 {
		t.Fatalf("epoch folded %d probe bytes, want %d", stats1.ProbeBytes, bytes1+bytes2)
	}
	if stats1.ProbeWall <= 0 {
		t.Fatal("probe wall time not recorded")
	}
	l3 := mk()
	e1Clean, stats1Clean := epochIDs(t, l3, 1)
	if !equalIDs(e1, e1Clean) {
		t.Fatal("probes perturbed the epoch's delivery order")
	}
	if stats1.BytesRead != stats1Clean.BytesRead {
		t.Fatalf("probe bytes leaked into BytesRead: %d vs %d", stats1.BytesRead, stats1Clean.BytesRead)
	}
	// The fold resets after each epoch.
	_, stats2 := epochIDs(t, l, 2)
	if stats2.Probes != 0 || stats2.ProbeBytes != 0 {
		t.Fatalf("probe accounting leaked into a later epoch: %+v", stats2)
	}
}

// TestProbeHandleReadsSameRecordsAcrossQualities: all candidate qualities
// of one §4.5 probe must be measured on the SAME records — otherwise the
// adopt-cheapest-within-tolerance decision compares sample difficulty, not
// quality. A Probe handle pins the draw; only the bytes differ.
func TestProbeHandleReadsSameRecordsAcrossQualities(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(4), pcr.WithScanGroups(4))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	l, err := pcr.NewLoader(ds, pcr.WithBatchSize(4), pcr.WithLoaderSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	p := l.Probe()
	low, lowBytes, err := p.Batches(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	full, fullBytes, err := p.Batches(ctx, pcr.Full, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(probeIDs(t, low, 4), probeIDs(t, full, 4)) {
		t.Fatal("candidate qualities of one probe read different records")
	}
	if lowBytes >= fullBytes {
		t.Fatalf("quality 1 read %d bytes, full %d — prefixes did not scale with quality", lowBytes, fullBytes)
	}
	// A fresh handle moves on to a different draw.
	next, _, err := l.Probe().Batches(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if equalIDs(probeIDs(t, low, 4), probeIDs(t, next, 4)) {
		t.Fatal("a new probe handle replayed the previous draw")
	}
}

// TestLoaderResumeUnderAdaptivePolicy: a loader resumed mid-epoch under an
// adaptive policy continues at the policy's current quality, and its byte
// accounting is exactly that of a fixed-quality loader resumed at the same
// checkpoint.
func TestLoaderResumeUnderAdaptivePolicy(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(4), pcr.WithScanGroups(4))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ctx := context.Background()
	base := []pcr.LoaderOption{pcr.WithBatchSize(8), pcr.WithLoaderSeed(7)}

	// Ground a policy and descend it to quality 2 before the epoch under
	// test (top is 4).
	p := &pcr.PlateauPolicy{Detector: autotune.PlateauDetector{Window: 1, MinImprove: 0.99}}
	l1, err := pcr.NewLoader(ds, append(base, pcr.WithQualityPolicy(p))...)
	if err != nil {
		t.Fatal(err)
	}
	epochIDs(t, l1, 0)
	p.Report(1.0)
	p.Report(1.0)
	p.Report(1.0)
	if q := p.Quality(); q != 2 {
		t.Fatalf("policy at %d, want 2", q)
	}

	// First life: two batches of epoch 1 at the policy's quality, then a
	// checkpoint and a "crash".
	var gotIDs []int64
	var cp pcr.Checkpoint
	consumed := 0
	for b, err := range l1.Epoch(ctx, 1) {
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range b.Samples {
			gotIDs = append(gotIDs, s.ID)
		}
		if consumed++; consumed == 2 {
			var ok bool
			if cp, ok = l1.Checkpoint(); !ok {
				t.Fatal("no checkpoint after two batches")
			}
			break
		}
	}

	// Second life: a restarted worker rebuilds its policy at the quality it
	// had reached (persisted alongside the model, like the LR schedule) and
	// resumes. The resumed epoch must continue at that quality.
	p2 := &pcr.PlateauPolicy{Start: 2}
	l2, err := pcr.NewLoader(ds, pcr.WithResume(cp), pcr.WithQualityPolicy(p2))
	if err != nil {
		t.Fatal(err)
	}
	for b, err := range l2.Epoch(ctx, cp.Epoch) {
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range b.Samples {
			gotIDs = append(gotIDs, s.ID)
		}
	}
	resStats, ok := l2.LastEpochStats()
	if !ok {
		t.Fatal("no stats after resumed epoch")
	}
	if resStats.MinQuality != 2 || resStats.MaxQuality != 2 {
		t.Fatalf("resumed epoch read qualities [%d,%d], want the policy's quality 2",
			resStats.MinQuality, resStats.MaxQuality)
	}

	// The stitched sequence equals an uninterrupted fixed-quality epoch.
	fixed, err := pcr.NewLoader(ds, append(base, pcr.WithQuality(2))...)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs, fullStats := epochIDs(t, fixed, 1)
	if !equalIDs(gotIDs, wantIDs) {
		t.Fatal("resumed adaptive epoch delivered a different sample sequence")
	}

	// Byte accounting across the boundary: the adaptive resume reads
	// byte-for-byte what a fixed-quality resume from the same checkpoint
	// reads, and strictly less than the uninterrupted epoch (skipped
	// records are never read).
	fixedRes, err := pcr.NewLoader(ds, pcr.WithResume(cp), pcr.WithQuality(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range fixedRes.Epoch(ctx, cp.Epoch) {
		if err != nil {
			t.Fatal(err)
		}
	}
	frStats, _ := fixedRes.LastEpochStats()
	if resStats.BytesRead != frStats.BytesRead {
		t.Fatalf("adaptive resume read %d bytes, fixed-quality resume %d", resStats.BytesRead, frStats.BytesRead)
	}
	if resStats.BytesRead >= fullStats.BytesRead {
		t.Fatalf("resumed epoch read %d bytes, full epoch %d — skipped records were read",
			resStats.BytesRead, fullStats.BytesRead)
	}
}

// TestProbeDeltaPricedOverWarmDiskCache is the acceptance e2e for probe
// pricing: against a live prefix server with a disk cache warmed at
// quality 1, a full-quality upward probe's network traffic — measured by
// the SERVER's own byte counter — equals exactly the missing scan-group
// delta of the records it probed. The probe's logical bytes and the disk
// cache's delta counter agree.
func TestProbeDeltaPricedOverWarmDiskCache(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(4), pcr.WithScanGroups(4))
	srv, ts := startServer(t, dir, nil)
	ctx := context.Background()

	// Map sample IDs to records from a local open of the same directory, so
	// the wire counters below see only the remote loader's traffic.
	local, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	idToRec := make(map[int64]int)
	for r := 0; r < local.NumRecords(); r++ {
		samples, err := local.ReadRecordEncoded(r, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range samples {
			idToRec[s.ID] = r
		}
	}

	remote, err := pcr.OpenRemote(ts.URL, pcr.WithDiskCache(t.TempDir(), 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	l, err := pcr.NewLoader(remote, pcr.WithBatchSize(4), pcr.WithQuality(1))
	if err != nil {
		t.Fatal(err)
	}

	// Warm epoch at quality 1: every record's q1 prefix lands in the disk
	// cache (this is the state a descended training run leaves behind).
	for _, err := range l.Epoch(ctx, 0) {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The upward probe, as the controller would issue it on an LR drop.
	served0 := srv.Stats().BytesServed
	batches, probeBytes, err := l.ProbeBatches(ctx, pcr.Full, 2)
	if err != nil {
		t.Fatal(err)
	}
	moved := srv.Stats().BytesServed - served0

	recs := make(map[int]bool)
	for _, id := range probeIDs(t, batches, 4) {
		recs[idToRec[id]] = true
	}
	if len(recs) == 0 {
		t.Fatal("probe touched no records")
	}
	var wantDelta, wantLogical int64
	for r := range recs {
		fullLen, err := local.RecordPrefixLen(r, pcr.Full)
		if err != nil {
			t.Fatal(err)
		}
		q1Len, err := local.RecordPrefixLen(r, 1)
		if err != nil {
			t.Fatal(err)
		}
		wantDelta += fullLen - q1Len
		wantLogical += fullLen
	}
	if wantDelta <= 0 {
		t.Fatal("degenerate dataset: no scan-group delta to measure")
	}
	if moved != wantDelta {
		t.Fatalf("upward probe moved %d network bytes, want exactly the missing scan-group delta %d", moved, wantDelta)
	}
	if probeBytes != wantLogical {
		t.Fatalf("probe reported %d logical bytes, want the probed records' full prefixes %d", probeBytes, wantLogical)
	}
	st, ok := remote.DiskCacheStats()
	if !ok {
		t.Fatal("no disk cache stats")
	}
	if st.DeltaBytes != wantDelta {
		t.Fatalf("disk cache fetched %d delta bytes, want %d", st.DeltaBytes, wantDelta)
	}
}
