package pcr

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/serve"
)

// OpenRemote opens a PCR dataset served by a pcrserved prefix server (see
// cmd/pcrserved and internal/serve). The returned Dataset behaves exactly
// like a local one: Scan streams at any stored quality, SizeAtQuality
// prices a scan from the index without network reads of record bytes, and
// — with WithCacheBytes — a re-scan at a higher quality fetches only the
// delta bytes of each record over the wire, the paper's §5 cache property
// running across the network.
//
// Remote serving is specific to the PCR layout (its whole point is prefix
// ranges), so WithFormat selecting a baseline format is an error.
func OpenRemote(baseURL string, opts ...Option) (*Dataset, error) {
	cfg, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if cfg.format != PCR {
		return nil, fmt.Errorf("pcr: remote serving supports the pcr format only, not %s", cfg.format.Name())
	}
	client, err := serve.NewClient(baseURL, nil)
	if err != nil {
		return nil, err
	}
	ix, err := client.FetchIndex()
	if err != nil {
		return nil, err
	}
	ds, err := core.OpenDatasetIndex(ix, client)
	if err != nil {
		return nil, err
	}
	r, err := newPCRReader(ds, cfg)
	if err != nil {
		ds.Close()
		return nil, err
	}
	return &Dataset{r: r, cfg: cfg}, nil
}
