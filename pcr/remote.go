package pcr

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/serve"
)

// ClusterStats snapshots the fleet counters of a remote dataset's
// cluster-aware client (see Dataset.ClusterStats).
type ClusterStats = serve.ClusterStats

// OpenRemote opens a PCR dataset served by one pcrserved prefix server or
// a whole serving fleet (see cmd/pcrserved and internal/serve). baseURL is
// one or more comma-separated seed URLs — any fleet member works as a
// seed; the full membership comes from its /cluster endpoint, and every
// record read is routed to the record's owner on the fleet's
// consistent-hash ring, hedged against a replica when the owner is slow,
// and failed over to surviving replicas when a member dies. The returned
// Dataset behaves exactly like a local one: Scan streams at any stored
// quality, SizeAtQuality prices a scan from the index without network
// reads of record bytes, and — with WithCacheBytes — a re-scan at a higher
// quality fetches only the delta bytes of each record over the wire, the
// paper's §5 cache property running across the network (and across a
// server kill: the delta read simply lands on a surviving replica).
//
// Three options change what "remote" costs. WithIndexShard makes this
// worker download only its stride partition of the index (and see a
// dataset whose records are exactly its shard — drive it with a default,
// unsharded Loader). WithDiskCache mounts a persistent local prefix cache
// under the read path, so a restarted worker re-reads warm local bytes
// instead of the network, and a later quality upgrade moves only the delta
// bytes. WithHedgeDelay tunes (or disables) the tail-latency hedging.
//
// Remote serving is specific to the PCR layout (its whole point is prefix
// ranges), so WithFormat selecting a baseline format is an error.
func OpenRemote(baseURL string, opts ...Option) (*Dataset, error) {
	cfg, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if cfg.format != PCR {
		return nil, fmt.Errorf("pcr: remote serving supports the pcr format only, not %s", cfg.format.Name())
	}
	var seeds []string
	for _, s := range strings.Split(baseURL, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seeds = append(seeds, s)
		}
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("pcr: no server URL in %q", baseURL)
	}
	client, err := serve.NewClusterClient(seeds, nil)
	if err != nil {
		return nil, err
	}
	if cfg.hedgeSet {
		client.SetHedgeDelay(cfg.hedgeDelay)
	}
	if cfg.indexShards > 0 {
		if err := client.SetShard(cfg.indexShard, cfg.indexShards); err != nil {
			client.Close()
			return nil, err
		}
	}
	ix, err := client.FetchIndex()
	if err != nil {
		client.Close()
		return nil, err
	}
	ds, err := core.OpenDatasetIndex(ix, client)
	if err != nil {
		client.Close()
		return nil, err
	}
	r, err := newPCRReader(ds, cfg)
	if err != nil {
		ds.Close()
		return nil, err
	}
	return &Dataset{r: r, cfg: cfg, cluster: client}, nil
}
