package pcr

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/serve"
)

// OpenRemote opens a PCR dataset served by a pcrserved prefix server (see
// cmd/pcrserved and internal/serve). The returned Dataset behaves exactly
// like a local one: Scan streams at any stored quality, SizeAtQuality
// prices a scan from the index without network reads of record bytes, and
// — with WithCacheBytes — a re-scan at a higher quality fetches only the
// delta bytes of each record over the wire, the paper's §5 cache property
// running across the network.
//
// Two options change what "remote" costs. WithIndexShard makes this worker
// download only its stride partition of the index (and see a dataset whose
// records are exactly its shard — drive it with a default, unsharded
// Loader). WithDiskCache mounts a persistent local prefix cache under the
// read path, so a restarted worker re-reads warm local bytes instead of
// the network, and a later quality upgrade moves only the delta bytes.
//
// Remote serving is specific to the PCR layout (its whole point is prefix
// ranges), so WithFormat selecting a baseline format is an error.
func OpenRemote(baseURL string, opts ...Option) (*Dataset, error) {
	cfg, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if cfg.format != PCR {
		return nil, fmt.Errorf("pcr: remote serving supports the pcr format only, not %s", cfg.format.Name())
	}
	client, err := serve.NewClient(baseURL, nil)
	if err != nil {
		return nil, err
	}
	if cfg.indexShards > 0 {
		if err := client.SetShard(cfg.indexShard, cfg.indexShards); err != nil {
			client.Close()
			return nil, err
		}
	}
	ix, err := client.FetchIndex()
	if err != nil {
		client.Close()
		return nil, err
	}
	ds, err := core.OpenDatasetIndex(ix, client)
	if err != nil {
		client.Close()
		return nil, err
	}
	r, err := newPCRReader(ds, cfg)
	if err != nil {
		ds.Close()
		return nil, err
	}
	return &Dataset{r: r, cfg: cfg}, nil
}
