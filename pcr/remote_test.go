package pcr_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
	"repro/pcr"
)

// startServer serves dir with the prefix server over httptest.
func startServer(t *testing.T, dir string, opts *serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// TestRemoteScanMatchesLocal streams the same dataset locally and through
// the serving layer and requires identical samples at every quality.
func TestRemoteScanMatchesLocal(t *testing.T) {
	dir, n := synthDir(t, pcr.WithImagesPerRecord(8), pcr.WithScanGroups(4))
	_, ts := startServer(t, dir, nil)

	local, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	remote, err := pcr.OpenRemote(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	if remote.NumImages() != n || remote.NumImages() != local.NumImages() {
		t.Fatalf("remote NumImages = %d, local = %d, want %d", remote.NumImages(), local.NumImages(), n)
	}
	if remote.Qualities() != local.Qualities() {
		t.Fatalf("remote Qualities = %d, local = %d", remote.Qualities(), local.Qualities())
	}
	ctx := context.Background()
	for q := 1; q <= local.Qualities(); q++ {
		ls, err := collect(ctx, local, q)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := collect(ctx, remote, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(ls) != len(rs) {
			t.Fatalf("q=%d: remote yielded %d samples, local %d", q, len(rs), len(ls))
		}
		for i := range ls {
			if ls[i].ID != rs[i].ID || ls[i].Label != rs[i].Label || !bytes.Equal(ls[i].JPEG, rs[i].JPEG) {
				t.Fatalf("q=%d sample %d: remote stream differs from local", q, i)
			}
		}
		lsize, err := local.SizeAtQuality(q)
		if err != nil {
			t.Fatal(err)
		}
		rsize, err := remote.SizeAtQuality(q)
		if err != nil {
			t.Fatal(err)
		}
		if lsize != rsize {
			t.Fatalf("q=%d: remote SizeAtQuality = %d, local %d", q, rsize, lsize)
		}
	}
}

func collect(ctx context.Context, ds *pcr.Dataset, q int) ([]pcr.Sample, error) {
	var out []pcr.Sample
	for s, err := range ds.ScanEncoded(ctx, q) {
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// TestRemoteCachedRescanFetchesOnlyDelta is the acceptance scenario: scan a
// served dataset at a coarse quality, re-scan at higher qualities with the
// client prefix cache on, and assert via the server's counters that each
// re-scan moved only the delta bytes.
func TestRemoteCachedRescanFetchesOnlyDelta(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8), pcr.WithScanGroups(5))
	srv, ts := startServer(t, dir, nil)

	ds, err := pcr.OpenRemote(ts.URL, pcr.WithCacheBytes(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	ctx := context.Background()
	sizeAt := func(q int) int64 {
		t.Helper()
		n, err := ds.SizeAtQuality(q)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	scan := func(q int) {
		t.Helper()
		for _, err := range ds.ScanEncoded(ctx, q) {
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	// Multi-group upgrade sequence: 1 → 3 → Full. Each step should move
	// exactly the byte difference between the quality levels across the
	// wire: the prefix property makes everything below the new level
	// reusable from the client cache.
	top := ds.Qualities()
	prev := srv.Stats().BytesServed
	scan(1)
	if got, want := srv.Stats().BytesServed-prev, sizeAt(1); got != want {
		t.Fatalf("cold scan at q=1 served %d bytes, want %d", got, want)
	}
	prev = srv.Stats().BytesServed
	scan(3)
	if got, want := srv.Stats().BytesServed-prev, sizeAt(3)-sizeAt(1); got != want {
		t.Fatalf("upgrade scan 1→3 served %d bytes, want delta %d", got, want)
	}
	prev = srv.Stats().BytesServed
	scan(pcr.Full)
	if got, want := srv.Stats().BytesServed-prev, sizeAt(top)-sizeAt(3); got != want {
		t.Fatalf("upgrade scan 3→full served %d bytes, want delta %d", got, want)
	}
	// A repeat scan at an already-cached quality moves nothing.
	prev = srv.Stats().BytesServed
	scan(3)
	if got := srv.Stats().BytesServed - prev; got != 0 {
		t.Fatalf("re-scan at cached quality served %d bytes, want 0", got)
	}

	stats, ok := ds.CacheStats()
	if !ok {
		t.Fatal("remote dataset with WithCacheBytes reports no cache")
	}
	if stats.UpgradeHits == 0 {
		t.Fatal("expected delta upgrade hits in the client cache")
	}
	if stats.Misses != int64(ds.NumRecords()) {
		t.Fatalf("client cache misses = %d, want one per record (%d)", stats.Misses, ds.NumRecords())
	}
}

// TestRemoteRejectsBaselineFormats: remote serving is PCR-only.
func TestRemoteRejectsBaselineFormats(t *testing.T) {
	dir, _ := synthDir(t)
	_, ts := startServer(t, dir, nil)
	if _, err := pcr.OpenRemote(ts.URL, pcr.WithFormat(pcr.TFRecord)); err == nil {
		t.Fatal("OpenRemote with TFRecord format should fail")
	}
}

// TestRemoteRandomAccess exercises the record-granular API over the wire.
func TestRemoteRandomAccess(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8))
	_, ts := startServer(t, dir, nil)
	ds, err := pcr.OpenRemote(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ctx := context.Background()
	samples, err := ds.ReadRecord(ctx, ds.NumRecords()-1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples from remote ReadRecord")
	}
	for _, s := range samples {
		if s.Image == nil {
			t.Fatalf("sample %d not decoded", s.ID)
		}
	}
}

// TestRemoteIndexShard: a worker opened with WithIndexShard sees exactly
// its stride partition — the same partition the loader's WithShard computes
// locally — and the shard views are disjoint and covering.
func TestRemoteIndexShard(t *testing.T) {
	dir, n := synthDir(t, pcr.WithImagesPerRecord(4))
	_, ts := startServer(t, dir, nil)

	full, err := pcr.OpenRemote(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()

	ctx := context.Background()
	seen := make(map[int64]int)
	records := 0
	for shard := 0; shard < 3; shard++ {
		ds, err := pcr.OpenRemote(ts.URL, pcr.WithIndexShard(shard, 3))
		if err != nil {
			t.Fatal(err)
		}
		records += ds.NumRecords()

		// The shard view IS this worker's shard: a default (unsharded)
		// loader drives it; a loader WithShard on top is a configuration
		// error.
		if _, err := pcr.NewLoader(ds, pcr.WithShard(shard, 3)); err == nil {
			t.Fatal("loader WithShard over an index-sharded dataset should fail")
		}
		l, err := pcr.NewLoader(ds, pcr.WithBatchSize(8))
		if err != nil {
			t.Fatal(err)
		}
		for b, err := range l.Epoch(ctx, 0) {
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range b.Samples {
				seen[s.ID]++
			}
		}
		ds.Close()
	}
	if records != full.NumRecords() {
		t.Fatalf("shard views hold %d records, want %d", records, full.NumRecords())
	}
	if len(seen) != n {
		t.Fatalf("3 shard workers covered %d images, want %d", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("image %d delivered %d times across shards, want exactly once", id, c)
		}
	}
}

// TestIndexShardLocalOpenRejected: the option is remote-only.
func TestIndexShardLocalOpenRejected(t *testing.T) {
	dir, _ := synthDir(t)
	if _, err := pcr.Open(dir, pcr.WithIndexShard(0, 2)); err == nil {
		t.Fatal("WithIndexShard on a local Open should fail")
	}
}
