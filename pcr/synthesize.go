package pcr

import (
	"fmt"

	"repro/internal/synth"
	"repro/internal/train"
)

// Synthesize generates the named synthetic dataset profile ("imagenet",
// "celebahq", "ham10000", "cars"), scaled by scale, and writes its train
// split to dir in the configured Format. Images are encoded at the profile's
// JPEG quality unless WithJPEGQuality overrides it. It returns the number of
// images written.
func Synthesize(dir, profile string, scale float64, seed int64, opts ...Option) (int, error) {
	p, err := synth.ProfileByName(profile)
	if err != nil {
		return 0, err
	}
	ds, err := synth.Generate(p.Scaled(scale), seed)
	if err != nil {
		return 0, err
	}
	w, err := Create(dir, append([]Option{WithJPEGQuality(p.JPEGQuality)}, opts...)...)
	if err != nil {
		return 0, err
	}
	for _, s := range ds.Train {
		if err := w.Append(Sample{ID: int64(s.ID), Label: int64(s.Label), Image: s.Img}); err != nil {
			return w.Count(), fmt.Errorf("pcr: synthesize %s: %w", profile, err)
		}
	}
	if err := w.Close(); err != nil {
		return w.Count(), err
	}
	return w.Count(), nil
}

// TrainSet is an in-memory PCR training set with per-scan-group feature
// caches, the input to the training and simulation harnesses under
// internal/train, internal/autotune, and internal/loader.
type TrainSet = train.PCRSet

// BuildTrainSet generates the named synthetic profile and encodes its train
// split into an in-memory TrainSet, honoring WithImagesPerRecord and
// WithScanGroups. It is the shared front door for the training examples and
// cmd/pcrtrain.
func BuildTrainSet(profile string, scale float64, seed int64, opts ...Option) (*TrainSet, error) {
	cfg, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	p, err := synth.ProfileByName(profile)
	if err != nil {
		return nil, err
	}
	ds, err := synth.Generate(p.Scaled(scale), seed)
	if err != nil {
		return nil, err
	}
	return train.BuildPCRSetGrouped(ds, cfg.imagesPerRecord, cfg.scanGroups)
}
