package pcr

import (
	"fmt"

	"repro/internal/jpegc"
)

// Writer appends samples to a dataset being created. It is not safe for
// concurrent use.
type Writer struct {
	fw     formatWriter
	cfg    *config
	n      int
	closed bool
}

// Create initializes a new dataset at dir in the configured Format (PCR by
// default) and returns a Writer for it.
func Create(dir string, opts ...Option) (*Writer, error) {
	cfg, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	fw, err := cfg.format.create(dir, cfg)
	if err != nil {
		return nil, err
	}
	return &Writer{fw: fw, cfg: cfg}, nil
}

// Append adds one sample. When s.JPEG is empty and s.Image is set, the image
// is encoded first (4:2:0 chroma subsampling at the WithJPEGQuality level,
// matching how photographic datasets are stored).
func (w *Writer) Append(s Sample) error {
	if w.closed {
		return fmt.Errorf("pcr: append: %w", ErrClosed)
	}
	if len(s.JPEG) == 0 {
		if s.Image == nil {
			return fmt.Errorf("pcr: sample %d has neither JPEG bytes nor an image", s.ID)
		}
		data, err := jpegc.Encode(s.Image, &jpegc.Options{Quality: w.cfg.jpegQuality, Subsample420: true})
		if err != nil {
			return fmt.Errorf("pcr: encoding sample %d: %w", s.ID, err)
		}
		s.JPEG = data
	}
	if err := w.fw.append(s); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count reports the samples appended so far.
func (w *Writer) Count() int { return w.n }

// Close flushes pending records and the dataset metadata. It is idempotent.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.fw.close()
}
